package prng

import "math"

// Rand adapts a Source into a convenient distribution sampler. It mirrors
// the pieces of C++'s <random> that the traffic assignment uses:
// uniform_real_distribution, uniform_int_distribution, bernoulli_distribution
// and normal_distribution.
//
// Every sampler documents exactly how many raw draws it consumes, because
// reproducible fast-forwarding (Skip) requires callers to account for
// stream positions.
type Rand struct {
	src Source
}

// NewRand wraps src. The Rand does not copy src: advancing the Rand
// advances src.
func NewRand(src Source) *Rand { return &Rand{src: src} }

// New returns a Rand over a fresh LCG64 seeded with seed.
func New(seed uint64) *Rand { return NewRand(NewLCG64(seed)) }

// Source returns the underlying source.
func (r *Rand) Source() Source { return r.src }

// Skip fast-forwards the underlying stream by n raw draws.
func (r *Rand) Skip(n uint64) { r.src.Jump(n) }

// Clone returns an independent Rand at the same stream position.
func (r *Rand) Clone() *Rand { return &Rand{src: r.src.Clone()} }

// Uint64 consumes one raw draw.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Float64 returns a uniform value in [0, 1) using the top 53 bits of one
// raw draw (the low bits of an LCG are weak).
func (r *Rand) Float64() float64 {
	return float64(r.src.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p, consuming one raw draw.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Intn returns a uniform integer in [0, n), consuming one raw draw.
// n must be positive. The tiny modulo bias (< 2^-53 relative for any
// simulation-scale n) is accepted in exchange for the fixed one-draw
// budget that reproducible fast-forwarding requires.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(r.Float64() * float64(n))
}

// Range returns a uniform float64 in [lo, hi), consuming one raw draw.
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed value with mean mu and standard
// deviation sigma, consuming exactly two raw draws (Box-Muller, cosine
// branch only, so the draw count is fixed).
func (r *Rand) Norm(mu, sigma float64) float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mu + sigma*z
}

// Perm returns a uniformly random permutation of [0, n) via Fisher-Yates,
// consuming exactly n-1 raw draws (n >= 2; 0 draws otherwise).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place using n-1 raw draws for len(xs) = n >= 2.
func Shuffle[T any](r *Rand, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Streams derives k well-separated generator streams from a master seed
// using SplitMix64. Unlike Jump-based partitioning of one sequence, these
// streams are statistically independent but NOT reproducible slices of a
// single shared sequence — they model the "give each thread its own seed"
// strategy the traffic assignment warns about (paper §5).
func Streams(seed uint64, k int) []*Rand {
	sm := SplitMix64{State: seed}
	out := make([]*Rand, k)
	for i := range out {
		out[i] = New(sm.Next())
	}
	return out
}

// Leapfrog returns k Rands over the SAME underlying sequence, where stream
// i starts at position offset+i. Combined with per-use strides, this is the
// classical leapfrog partitioning of one shared sequence.
func Leapfrog(seed uint64, k int, offset uint64) []*Rand {
	out := make([]*Rand, k)
	for i := range out {
		g := NewLCG64(seed)
		g.Jump(offset + uint64(i))
		out[i] = NewRand(g)
	}
	return out
}

// BlockSplit returns k Rands over the same sequence, where stream i is
// fast-forwarded to position offset + i*blockLen. Each stream owns a
// contiguous block of the shared sequence; this is the partitioning the
// reproducible traffic parallelisation uses.
func BlockSplit(seed uint64, k int, offset, blockLen uint64) []*Rand {
	out := make([]*Rand, k)
	for i := range out {
		g := NewLCG64(seed)
		g.Jump(offset + uint64(i)*blockLen)
		out[i] = NewRand(g)
	}
	return out
}
