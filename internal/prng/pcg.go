package prng

import "math/bits"

// PCG32 is O'Neill's PCG-XSH-RR generator: a 64-bit LCG state with a
// permuted 32-bit output. Because the state transition is the same affine
// map family as LCG64, it inherits the O(log n) Jump — making it the
// statistically strongest of this package's fast-forwardable generators
// (the LCG's raw low bits fail tests that PCG's permuted output passes).
// Each Uint64 concatenates two 32-bit outputs, consuming two raw steps;
// Jump counts raw steps, and JumpDraws counts Uint64 calls.
type PCG32 struct {
	state uint64
	inc   uint64 // stream selector; must be odd
}

const pcgMult = 6364136223846793005

// NewPCG32 returns a PCG32 on the default stream.
func NewPCG32(seed uint64) *PCG32 {
	g := &PCG32{}
	g.Seed(seed)
	return g
}

// setStream selects the generator's stream; generators on different
// streams are independent even with equal seeds.
func (g *PCG32) setStream(stream uint64) {
	g.inc = stream<<1 | 1
}

// Seed resets the generator (reference PCG seeding sequence).
func (g *PCG32) Seed(seed uint64) {
	if g.inc == 0 {
		g.setStream(0xda3e39cb94b95bdb)
	}
	g.state = 0
	g.next32()
	g.state += seed
	g.next32()
}

// next32 advances one raw step and returns the permuted 32-bit output.
func (g *PCG32) next32() uint32 {
	old := g.state
	g.state = old*pcgMult + g.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := int(old >> 59)
	return bits.RotateLeft32(xorshifted, -rot)
}

// Uint64 returns 64 random bits (two raw steps).
func (g *PCG32) Uint64() uint64 {
	hi := uint64(g.next32())
	lo := uint64(g.next32())
	return hi<<32 | lo
}

// Jump advances by n raw steps in O(log n). Note Uint64 consumes two raw
// steps; use JumpDraws to skip whole Uint64 outputs.
func (g *PCG32) Jump(n uint64) {
	accA, accC := affinePowInc(pcgMult, g.inc, n)
	g.state = g.state*accA + accC
}

// JumpDraws advances by n Uint64 outputs (2n raw steps).
func (g *PCG32) JumpDraws(n uint64) {
	g.Jump(2 * n)
}

// Clone returns an independent copy.
func (g *PCG32) Clone() Source {
	c := *g
	return &c
}

// State returns the raw state (for tests/checkpointing).
func (g *PCG32) State() uint64 { return g.state }

// affinePowInc is affinePow with a configurable increment.
func affinePowInc(a, c, n uint64) (accA, accC uint64) {
	accA, accC = 1, 0
	curA, curC := a, c
	for n > 0 {
		if n&1 == 1 {
			accA, accC = curA*accA, curA*accC+curC
		}
		curA, curC = curA*curA, curA*curC+curC
		n >>= 1
	}
	return accA, accC
}
