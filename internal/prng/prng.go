// Package prng provides pseudo-random number generators with O(log n)
// jump-ahead ("fast-forward"), the capability at the heart of the
// Nagel-Schreckenberg traffic assignment (paper §5): a shared random
// sequence can be consumed by many workers, each of which jumps directly
// to its slice of the sequence, so parallel runs reproduce the serial
// output bit for bit regardless of the worker count.
//
// Two linear congruential generator families are provided:
//
//   - LCG64: a full-period power-of-two-modulus LCG (Knuth MMIX constants),
//     state update s' = a*s + c (mod 2^64).
//   - MinStd: the 31-bit multiplicative "minimal standard" generator
//     (Park-Miller, the same family as C++'s minstd_rand that the
//     assignment's starter code fast-forwards).
//
// Both satisfy Source, which extends enough of math/rand's contract to
// drive the distribution adapters in this package.
package prng

// Source is a deterministic stream of pseudo-random numbers that supports
// logarithmic-time fast-forward and cheap copying.
type Source interface {
	// Uint64 returns the next value of the stream.
	Uint64() uint64
	// Jump advances the stream by n steps in O(log n) time; it is
	// equivalent to calling Uint64 n times and discarding the results.
	Jump(n uint64)
	// Clone returns an independent copy positioned at the same point of
	// the stream.
	Clone() Source
	// Seed resets the stream to the beginning of the sequence identified
	// by seed.
	Seed(seed uint64)
}

// Knuth's MMIX LCG constants.
const (
	lcg64A = 6364136223846793005
	lcg64C = 1442695040888963407
)

// LCG64 is a 64-bit linear congruential generator with modulus 2^64.
// Its zero value is a valid generator seeded with 0.
type LCG64 struct {
	state uint64
}

// NewLCG64 returns an LCG64 seeded with seed.
func NewLCG64(seed uint64) *LCG64 {
	g := &LCG64{}
	g.Seed(seed)
	return g
}

// Seed resets the generator. The raw seed is scrambled through SplitMix64
// so that small consecutive seeds yield well-separated states.
func (g *LCG64) Seed(seed uint64) {
	sm := SplitMix64{State: seed}
	g.state = sm.Next()
}

// Uint64 advances the state once and returns it. The raw LCG state has weak
// low bits; they are adequate for simulation workloads but Float64 below
// uses only the top 53 bits.
func (g *LCG64) Uint64() uint64 {
	g.state = g.state*lcg64A + lcg64C
	return g.state
}

// State returns the current internal state (useful for tests and
// checkpointing).
func (g *LCG64) State() uint64 { return g.state }

// SetState restores a state captured with State.
func (g *LCG64) SetState(s uint64) { g.state = s }

// Jump advances the generator by n steps in O(log n).
//
// One step is the affine map f(x) = a*x + c (mod 2^64). Composition of
// affine maps is affine: applying (A1,C1) then (A2,C2) gives
// (A2*A1, A2*C1 + C2). Jump exponentiates the one-step map by n with
// square-and-multiply, then applies the result once.
func (g *LCG64) Jump(n uint64) {
	accA, accC := affinePow(lcg64A, lcg64C, n)
	g.state = g.state*accA + accC
}

// Clone returns an independent copy of the generator.
func (g *LCG64) Clone() Source {
	c := *g
	return &c
}

// affinePow returns the n-fold composition of the affine map x -> a*x+c
// over Z/2^64, as a pair (A, C) with f^n(x) = A*x + C.
func affinePow(a, c, n uint64) (accA, accC uint64) {
	accA, accC = 1, 0
	curA, curC := a, c
	for n > 0 {
		if n&1 == 1 {
			// acc <- cur ∘ acc
			accA, accC = curA*accA, curA*accC+curC
		}
		// cur <- cur ∘ cur
		curA, curC = curA*curA, curA*curC+curC
		n >>= 1
	}
	return accA, accC
}

// MinStd is the Park-Miller "minimal standard" multiplicative LCG:
// s' = 48271 * s (mod 2^31-1), the generator C++ exposes as minstd_rand.
// State is always in [1, 2^31-2].
type MinStd struct {
	state uint64
}

const (
	minStdA = 48271
	minStdM = 1<<31 - 1
)

// NewMinStd returns a MinStd generator seeded with seed.
func NewMinStd(seed uint64) *MinStd {
	g := &MinStd{}
	g.Seed(seed)
	return g
}

// Seed resets the generator. Any seed value is accepted; it is reduced to
// the valid state range [1, m-1].
func (g *MinStd) Seed(seed uint64) {
	s := seed % minStdM
	if s == 0 {
		s = 1
	}
	g.state = s
}

// Uint64 advances and returns the next state, a value in [1, 2^31-2].
func (g *MinStd) Uint64() uint64 {
	g.state = g.state * minStdA % minStdM
	return g.state
}

// Jump advances by n steps using modular exponentiation:
// s_n = a^n * s (mod m).
func (g *MinStd) Jump(n uint64) {
	g.state = g.state * modPow(minStdA, n, minStdM) % minStdM
}

// Clone returns an independent copy of the generator.
func (g *MinStd) Clone() Source {
	c := *g
	return &c
}

// State returns the current internal state.
func (g *MinStd) State() uint64 { return g.state }

// modPow computes base^exp mod m for m < 2^32 without overflow.
func modPow(base, exp, m uint64) uint64 {
	result := uint64(1)
	base %= m
	for exp > 0 {
		if exp&1 == 1 {
			result = result * base % m
		}
		base = base * base % m
		exp >>= 1
	}
	return result
}

// SplitMix64 is Steele et al.'s statistically strong 64-bit mixer. It is
// used to derive well-separated seeds for worker streams and to scramble
// user seeds; it also works as a standalone generator.
type SplitMix64 struct {
	State uint64
}

// Next returns the next output of the SplitMix64 sequence.
func (s *SplitMix64) Next() uint64 {
	s.State += 0x9e3779b97f4a7c15
	z := s.State
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
