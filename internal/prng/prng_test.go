package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLCG64JumpMatchesSerial(t *testing.T) {
	for _, n := range []uint64{0, 1, 2, 3, 7, 64, 1000, 123457} {
		serial := NewLCG64(42)
		for i := uint64(0); i < n; i++ {
			serial.Uint64()
		}
		jumped := NewLCG64(42)
		jumped.Jump(n)
		if serial.State() != jumped.State() {
			t.Errorf("Jump(%d): state %d, want %d", n, jumped.State(), serial.State())
		}
	}
}

func TestLCG64JumpProperty(t *testing.T) {
	// Property: Jump(a) then Jump(b) == Jump(a+b), for bounded a, b.
	f := func(seed uint64, a, b uint16) bool {
		g1 := NewLCG64(seed)
		g1.Jump(uint64(a))
		g1.Jump(uint64(b))
		g2 := NewLCG64(seed)
		g2.Jump(uint64(a) + uint64(b))
		return g1.State() == g2.State()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLCG64JumpLarge(t *testing.T) {
	// Jump must be consistent for huge n: Jump(2^40) == Jump(2^39) twice.
	g1 := NewLCG64(7)
	g1.Jump(1 << 40)
	g2 := NewLCG64(7)
	g2.Jump(1 << 39)
	g2.Jump(1 << 39)
	if g1.State() != g2.State() {
		t.Error("large jumps disagree")
	}
}

func TestMinStdJumpMatchesSerial(t *testing.T) {
	for _, n := range []uint64{0, 1, 5, 100, 54321} {
		serial := NewMinStd(99)
		for i := uint64(0); i < n; i++ {
			serial.Uint64()
		}
		jumped := NewMinStd(99)
		jumped.Jump(n)
		if serial.State() != jumped.State() {
			t.Errorf("MinStd Jump(%d): state %d, want %d", n, jumped.State(), serial.State())
		}
	}
}

func TestMinStdStateRange(t *testing.T) {
	g := NewMinStd(12345)
	for i := 0; i < 10000; i++ {
		v := g.Uint64()
		if v == 0 || v >= minStdM {
			t.Fatalf("state %d out of range at step %d", v, i)
		}
	}
}

func TestMinStdKnownSequence(t *testing.T) {
	// C++ minstd_rand with seed 1: first value is 48271.
	g := NewMinStd(1)
	if v := g.Uint64(); v != 48271 {
		t.Errorf("first minstd value = %d, want 48271", v)
	}
	// 10000th value of minstd_rand(1) is the documented 399268537.
	g = NewMinStd(1)
	g.Jump(9999)
	if v := g.Uint64(); v != 399268537 {
		t.Errorf("10000th minstd value = %d, want 399268537", v)
	}
}

func TestSeedScrambling(t *testing.T) {
	// Consecutive seeds must give well-separated states.
	a := NewLCG64(1)
	b := NewLCG64(2)
	if a.State() == b.State() {
		t.Error("seeds 1 and 2 collide")
	}
	if a.State()^b.State() < 1<<32 {
		t.Error("seeds 1 and 2 differ only in low bits; scrambling too weak")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := NewLCG64(5)
	g.Uint64()
	c := g.Clone()
	g.Uint64()
	cv := c.Uint64()
	g2 := NewLCG64(5)
	g2.Uint64()
	want := g2.Uint64()
	if cv != want {
		t.Error("clone did not preserve position")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(17)
	const n, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/buckets) > 0.1*n/buckets {
			t.Errorf("bucket %d count %d deviates >10%% from %d", b, c, n/buckets)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(23)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.13) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.13) > 0.01 {
		t.Errorf("Bernoulli(0.13) frequency %v", p)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(31)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(2.0, 3.0)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2.0) > 0.05 {
		t.Errorf("normal mean = %v, want ~2", mean)
	}
	if math.Abs(math.Sqrt(variance)-3.0) > 0.05 {
		t.Errorf("normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestNormDrawBudget(t *testing.T) {
	// Norm must consume exactly two raw draws so that Skip bookkeeping
	// stays exact.
	r1 := New(41)
	r1.Norm(0, 1)
	v1 := r1.Uint64()

	r2 := New(41)
	r2.Skip(2)
	v2 := r2.Uint64()
	if v1 != v2 {
		t.Error("Norm consumed a number of draws other than 2")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(43)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPermDrawBudget(t *testing.T) {
	r1 := New(47)
	r1.Perm(10)
	v1 := r1.Uint64()
	r2 := New(47)
	r2.Skip(9)
	v2 := r2.Uint64()
	if v1 != v2 {
		t.Error("Perm(10) consumed a number of draws other than 9")
	}
}

func TestBlockSplitMatchesSharedSequence(t *testing.T) {
	// BlockSplit streams must reproduce the exact shared sequence.
	const k, blockLen = 4, 100
	master := New(55)
	var serial []uint64
	for i := 0; i < k*blockLen; i++ {
		serial = append(serial, master.Uint64())
	}
	streams := BlockSplit(55, k, 0, blockLen)
	for s, st := range streams {
		for j := 0; j < blockLen; j++ {
			if got, want := st.Uint64(), serial[s*blockLen+j]; got != want {
				t.Fatalf("stream %d pos %d: %d want %d", s, j, got, want)
			}
		}
	}
}

func TestLeapfrogPositions(t *testing.T) {
	master := New(66)
	var serial []uint64
	for i := 0; i < 10; i++ {
		serial = append(serial, master.Uint64())
	}
	streams := Leapfrog(66, 3, 0)
	for i, st := range streams {
		if got := st.Uint64(); got != serial[i] {
			t.Fatalf("leapfrog stream %d first draw = %d, want %d", i, got, serial[i])
		}
	}
}

func TestStreamsAreDistinct(t *testing.T) {
	ss := Streams(77, 8)
	seen := map[uint64]bool{}
	for _, s := range ss {
		v := s.Uint64()
		if seen[v] {
			t.Fatal("independent streams produced identical first draws")
		}
		seen[v] = true
	}
}

func TestSplitMix64Known(t *testing.T) {
	// Reference value from the SplitMix64 reference implementation:
	// seed 0 -> first output 0xE220A8397B1DCDAF.
	s := SplitMix64{State: 0}
	if v := s.Next(); v != 0xE220A8397B1DCDAF {
		t.Errorf("SplitMix64(0) first = %#x, want 0xE220A8397B1DCDAF", v)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(88)
	xs := []string{"a", "b", "c", "d", "e"}
	Shuffle(r, xs)
	counts := map[string]int{}
	for _, x := range xs {
		counts[x]++
	}
	for _, want := range []string{"a", "b", "c", "d", "e"} {
		if counts[want] != 1 {
			t.Fatalf("shuffle lost element %q: %v", want, xs)
		}
	}
}

func BenchmarkLCG64Next(b *testing.B) {
	g := NewLCG64(1)
	for i := 0; i < b.N; i++ {
		g.Uint64()
	}
}

func BenchmarkLCG64Jump(b *testing.B) {
	g := NewLCG64(1)
	for i := 0; i < b.N; i++ {
		g.Jump(1 << 30)
	}
}

func BenchmarkMinStdJump(b *testing.B) {
	g := NewMinStd(1)
	for i := 0; i < b.N; i++ {
		g.Jump(1 << 30)
	}
}

func TestPCG32JumpMatchesSerial(t *testing.T) {
	for _, n := range []uint64{0, 1, 2, 7, 100, 12345} {
		serial := NewPCG32(99)
		for i := uint64(0); i < n; i++ {
			serial.next32()
		}
		jumped := NewPCG32(99)
		jumped.Jump(n)
		if serial.State() != jumped.State() {
			t.Errorf("PCG Jump(%d): %d want %d", n, jumped.State(), serial.State())
		}
	}
}

func TestPCG32JumpDraws(t *testing.T) {
	a := NewPCG32(5)
	for i := 0; i < 10; i++ {
		a.Uint64()
	}
	b := NewPCG32(5)
	b.JumpDraws(10)
	if a.Uint64() != b.Uint64() {
		t.Error("JumpDraws misaligned with Uint64 budget")
	}
}

func TestPCG32ReferenceSequence(t *testing.T) {
	// Reference values from the pcg32_random_r demo: seed 42, stream 54.
	g := &PCG32{}
	g.setStream(54)
	g.Seed(42)
	want := []uint32{0xa15c02b7, 0x7b47f409, 0xba1d3330, 0x83d2f293, 0xbfa4784b}
	for i, w := range want {
		if got := g.next32(); got != w {
			t.Fatalf("output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestPCG32DistributionSanity(t *testing.T) {
	r := NewRand(NewPCG32(7))
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if m := sum / n; math.Abs(m-0.5) > 0.01 {
		t.Errorf("PCG uniform mean %v", m)
	}
}

func TestPCG32CloneAndSourceInterface(t *testing.T) {
	var src Source = NewPCG32(3)
	src.Uint64()
	c := src.Clone()
	if c.Uint64() != func() uint64 {
		s := NewPCG32(3)
		s.Uint64()
		return s.Uint64()
	}() {
		t.Error("PCG clone broke position")
	}
}

func BenchmarkPCG32Next(b *testing.B) {
	g := NewPCG32(1)
	for i := 0; i < b.N; i++ {
		g.Uint64()
	}
}

func TestPCG32JumpProperty(t *testing.T) {
	f := func(seed uint64, a, b uint16) bool {
		g1 := NewPCG32(seed)
		g1.Jump(uint64(a))
		g1.Jump(uint64(b))
		g2 := NewPCG32(seed)
		g2.Jump(uint64(a) + uint64(b))
		return g1.State() == g2.State()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
