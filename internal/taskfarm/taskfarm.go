// Package taskfarm distributes M independent tasks over the P ranks of a
// cluster — the PDC concept of the hyper-parameter-optimisation assignment
// (paper §7): "how to distribute independent tasks to different nodes in
// MPI when the number of nodes is not evenly divisible by the number of
// tasks". Static block and cyclic assignments expose the remainder
// imbalance; the dynamic manager-worker farm trades messages for balance.
package taskfarm

import (
	"repro/internal/cluster"
	"repro/internal/obs"
)

// Mode selects a static assignment shape.
type Mode int

const (
	// Block gives rank r tasks [r*M/P, (r+1)*M/P) — contiguous chunks.
	Block Mode = iota
	// Cyclic gives rank r tasks r, r+P, r+2P, ... — round robin.
	Cyclic
)

// String names the mode.
func (m Mode) String() string {
	if m == Cyclic {
		return "cyclic"
	}
	return "block"
}

// Report describes who executed what.
type Report struct {
	// PerRank[r] is the number of tasks rank r executed.
	PerRank []int
}

// MaxLoad returns the largest per-rank task count.
func (r Report) MaxLoad() int {
	max := 0
	for _, n := range r.PerRank {
		if n > max {
			max = n
		}
	}
	return max
}

// Imbalance returns max/mean load (1.0 = perfectly balanced); 0 when no
// tasks ran.
func (r Report) Imbalance() float64 {
	total := 0
	for _, n := range r.PerRank {
		total += n
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(r.PerRank))
	return float64(r.MaxLoad()) / mean
}

// WorkerImbalance returns max/mean load over ranks 1..P-1 — the right
// balance metric for the manager-worker farm, where rank 0 intentionally
// executes nothing. Falls back to Imbalance for single-rank reports.
func (r Report) WorkerImbalance() float64 {
	if len(r.PerRank) <= 1 {
		return r.Imbalance()
	}
	return Report{PerRank: r.PerRank[1:]}.Imbalance()
}

// TaskResult pairs a task index with its result — the unit that crosses
// rank boundaries in both farms. Package-level (not function-local) so
// each R instantiation can be registered with the cluster wire codec,
// making the farms runnable multi-process under `peachy launch`.
type TaskResult[R any] struct {
	Task  int
	Value R
}

// registerWire registers one R instantiation's cross-rank payload types:
// single results (dynamic farm), per-rank result slices, and the gather
// tree's slice-of-slices segments (static farm). Safe to call repeatedly.
func registerWire[R any]() {
	cluster.RegisterWire(TaskResult[R]{}, []TaskResult[R]{}, [][]TaskResult[R]{})
}

// StaticTasks returns the task ids assigned to rank of size under mode.
func StaticTasks(m, size, rank int, mode Mode) []int {
	var out []int
	switch mode {
	case Cyclic:
		for t := rank; t < m; t += size {
			out = append(out, t)
		}
	default:
		lo := rank * m / size
		hi := (rank + 1) * m / size
		for t := lo; t < hi; t++ {
			out = append(out, t)
		}
	}
	return out
}

// RunStatic executes tasks [0, m) with a static assignment. Every rank
// calls it collectively with the same m and mode; exec(task) runs on the
// assigned rank. Results (indexed by task) and the load report are
// returned on rank 0; other ranks get nil results.
func RunStatic[R any](c *cluster.Comm, m int, mode Mode, exec func(task int) R) ([]R, Report) {
	registerWire[R]()
	rec := c.Obs()
	var local []TaskResult[R]
	for _, t := range StaticTasks(m, c.Size(), c.Rank(), mode) {
		wall := rec.Now()
		sim := c.Clock()
		v := exec(t)
		rec.PhaseSpan("farm.task", sim, c.Clock(), wall, obs.KV{K: "task", V: int64(t)})
		local = append(local, TaskResult[R]{t, v})
	}
	gathered := cluster.Gather(c, 0, local)
	report := Report{}
	if c.Rank() != 0 {
		return nil, report
	}
	results := make([]R, m)
	report.PerRank = make([]int, c.Size())
	for r, batch := range gathered {
		report.PerRank[r] = len(batch)
		for _, e := range batch {
			results[e.Task] = e.Value
		}
	}
	return results, report
}

// Control tags for the dynamic farm (private to this collective pattern).
const (
	tagRequest = 7001
	tagAssign  = 7002
	tagResult  = 7003
)

// RunDynamic executes tasks [0, m) with a manager-worker farm: rank 0
// hands out one task at a time to whichever worker asks next, so expensive
// tasks no longer gate the remainder distribution. With one rank the
// manager executes everything itself. Results and the report land on rank
// 0; other ranks get nil.
func RunDynamic[R any](c *cluster.Comm, m int, exec func(task int) R) ([]R, Report) {
	registerWire[R]()
	if c.Size() == 1 {
		rec := c.Obs()
		results := make([]R, m)
		for t := 0; t < m; t++ {
			wall := rec.Now()
			sim := c.Clock()
			results[t] = exec(t)
			rec.PhaseSpan("farm.task", sim, c.Clock(), wall, obs.KV{K: "task", V: int64(t)})
		}
		return results, Report{PerRank: []int{m}}
	}
	if c.Rank() == 0 {
		results := make([]R, m)
		perRank := make([]int, c.Size())
		next := 0
		done := 0
		workersLeft := c.Size() - 1
		for done < m || workersLeft > 0 {
			// Serve any message: request or result.
			payload, src := cluster.RecvFrom[any](c, cluster.AnySource, cluster.AnyTag)
			switch v := payload.(type) {
			case string: // request marker
				_ = v
				if next < m {
					cluster.Send(c, src, tagAssign, next)
					perRank[src]++
					next++
				} else {
					cluster.Send(c, src, tagAssign, -1)
					workersLeft--
				}
			case TaskResult[R]:
				results[v.Task] = v.Value
				done++
			}
		}
		return results, Report{PerRank: perRank}
	}
	// Worker loop. With a trace attached, the gap between asking for work
	// and receiving an assignment is recorded as a farm.wait span (the
	// worker's idle time), and each execution as a farm.task span.
	rec := c.Obs()
	for {
		waitWall := rec.Now()
		waitSim := c.Clock()
		cluster.Send(c, 0, tagRequest, "req")
		task := cluster.Recv[int](c, 0, tagAssign)
		rec.PhaseSpan("farm.wait", waitSim, c.Clock(), waitWall)
		if task < 0 {
			return nil, Report{}
		}
		taskWall := rec.Now()
		taskSim := c.Clock()
		v := exec(task)
		rec.PhaseSpan("farm.task", taskSim, c.Clock(), taskWall, obs.KV{K: "task", V: int64(task)})
		cluster.Send(c, 0, tagResult, TaskResult[R]{task, v})
	}
}
