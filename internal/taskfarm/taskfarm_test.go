package taskfarm

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cluster"
)

func TestStaticTasksCoverage(t *testing.T) {
	f := func(m uint8, size uint8, modeRaw bool) bool {
		mm := int(m)
		ss := int(size%8) + 1
		mode := Block
		if modeRaw {
			mode = Cyclic
		}
		seen := make([]int, mm)
		for r := 0; r < ss; r++ {
			for _, task := range StaticTasks(mm, ss, r, mode) {
				if task < 0 || task >= mm {
					return false
				}
				seen[task]++
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStaticBlockShape(t *testing.T) {
	got := StaticTasks(10, 3, 0, Block)
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("block rank0 %v", got)
	}
	got = StaticTasks(10, 3, 2, Block)
	if len(got) != 4 || got[0] != 6 {
		t.Errorf("block rank2 %v", got)
	}
}

func TestStaticCyclicShape(t *testing.T) {
	got := StaticTasks(10, 4, 1, Cyclic)
	want := []int{1, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("cyclic %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cyclic[%d]=%d", i, got[i])
		}
	}
}

func TestRunStaticResults(t *testing.T) {
	for _, mode := range []Mode{Block, Cyclic} {
		for _, p := range []int{1, 3, 4} {
			w := cluster.NewWorld(p)
			var results []int
			var rep Report
			err := w.Run(func(c *cluster.Comm) {
				r, rp := RunStatic(c, 10, mode, func(task int) int { return task * task })
				if c.Rank() == 0 {
					results, rep = r, rp
				} else if r != nil {
					t.Error("non-root got results")
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			for task, v := range results {
				if v != task*task {
					t.Errorf("mode=%v P=%d task %d = %d", mode, p, task, v)
				}
			}
			total := 0
			for _, n := range rep.PerRank {
				total += n
			}
			if total != 10 {
				t.Errorf("report total %d", total)
			}
		}
	}
}

func TestRunStaticImbalanceWhenNotDivisible(t *testing.T) {
	// M=10, P=4 -> loads 2,3,2,3 under block: imbalance 3/2.5 = 1.2.
	w := cluster.NewWorld(4)
	var rep Report
	err := w.Run(func(c *cluster.Comm) {
		_, r := RunStatic(c, 10, Block, func(task int) int { return task })
		if c.Rank() == 0 {
			rep = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxLoad() != 3 {
		t.Errorf("max load %d", rep.MaxLoad())
	}
	if rep.Imbalance() <= 1.0 {
		t.Errorf("imbalance %v should exceed 1 when P does not divide M", rep.Imbalance())
	}
}

func TestRunDynamicResults(t *testing.T) {
	for _, p := range []int{1, 2, 3, 6, 8} {
		w := cluster.NewWorld(p)
		var results []int
		var rep Report
		err := w.Run(func(c *cluster.Comm) {
			r, rp := RunDynamic(c, 10, func(task int) int { return task + 100 })
			if c.Rank() == 0 {
				results, rep = r, rp
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 10 {
			t.Fatalf("P=%d results %v", p, results)
		}
		for task, v := range results {
			if v != task+100 {
				t.Errorf("P=%d task %d = %d", p, task, v)
			}
		}
		total := 0
		for _, n := range rep.PerRank {
			total += n
		}
		if total != 10 {
			t.Errorf("P=%d dynamic report total %d", p, total)
		}
		// Manager does not execute tasks when P > 1.
		if p > 1 && rep.PerRank[0] != 0 {
			t.Errorf("manager executed %d tasks", rep.PerRank[0])
		}
	}
}

func TestRunDynamicZeroTasks(t *testing.T) {
	w := cluster.NewWorld(3)
	err := w.Run(func(c *cluster.Comm) {
		r, _ := RunDynamic(c, 0, func(task int) int { return task })
		if c.Rank() == 0 && len(r) != 0 {
			t.Errorf("zero tasks produced %v", r)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDynamicBalancesHeterogeneousTasks(t *testing.T) {
	// Tasks 0 and 1 are "slow" (they model big NN configs). The dynamic
	// farm assigns tasks on demand, so the two slow tasks land on
	// different workers, while static block hands both (plus a third
	// task) to rank 0. Durations are real sleeps: sleeping goroutines do
	// not hold a CPU, so this measures scheduling shape, not host speed.
	const m = 8
	cost := func(task int) time.Duration {
		if task < 2 {
			return 40 * time.Millisecond
		}
		return 1 * time.Millisecond
	}
	measure := func(run func(c *cluster.Comm)) time.Duration {
		w := cluster.NewWorld(3)
		start := time.Now()
		if err := w.Run(run); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	staticTime := measure(func(c *cluster.Comm) {
		RunStatic(c, m, Block, func(task int) int {
			time.Sleep(cost(task))
			return task
		})
	})
	dynTime := measure(func(c *cluster.Comm) {
		RunDynamic(c, m, func(task int) int {
			time.Sleep(cost(task))
			return task
		})
	})
	// Static block: rank 0 sleeps ~81ms. Dynamic: each worker takes one
	// slow task, ~43ms. Require a clear gap to avoid flakiness.
	if dynTime >= staticTime*3/4 {
		t.Errorf("dynamic (%v) not clearly better than static (%v) on skewed tasks", dynTime, staticTime)
	}
}

func TestModeString(t *testing.T) {
	if Block.String() != "block" || Cyclic.String() != "cyclic" {
		t.Error("mode names")
	}
}

func TestReportEdgeCases(t *testing.T) {
	if (Report{}).Imbalance() != 0 {
		t.Error("empty report imbalance")
	}
	r := Report{PerRank: []int{2, 2}}
	if r.Imbalance() != 1.0 {
		t.Error("balanced report imbalance")
	}
}

func TestWorkerImbalance(t *testing.T) {
	r := Report{PerRank: []int{0, 5, 5}}
	if r.WorkerImbalance() != 1.0 {
		t.Errorf("worker imbalance %v", r.WorkerImbalance())
	}
	if r.Imbalance() <= 1.0 {
		t.Error("raw imbalance should count the idle manager")
	}
	single := Report{PerRank: []int{4}}
	if single.WorkerImbalance() != 1.0 {
		t.Error("single-rank fallback")
	}
}
