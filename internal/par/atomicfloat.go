package par

import (
	"math"
	"sync"
	"sync/atomic"
)

// AtomicFloat64 is a float64 that supports lock-free atomic addition via a
// compare-and-swap loop on the bit pattern — the "atomic" rung of the
// K-means strategy ladder (paper §3, stage 3), standing in for OpenMP's
// `#pragma omp atomic` on a double.
type AtomicFloat64 struct {
	bits uint64
}

// Load returns the current value.
func (a *AtomicFloat64) Load() float64 {
	return math.Float64frombits(atomic.LoadUint64(&a.bits))
}

// Store sets the value.
func (a *AtomicFloat64) Store(v float64) {
	atomic.StoreUint64(&a.bits, math.Float64bits(v))
}

// Add atomically adds delta and returns the new value.
func (a *AtomicFloat64) Add(delta float64) float64 {
	for {
		old := atomic.LoadUint64(&a.bits)
		newV := math.Float64frombits(old) + delta
		if atomic.CompareAndSwapUint64(&a.bits, old, math.Float64bits(newV)) {
			return newV
		}
	}
}

// CriticalAccumulator guards a float64 slice and an int slice with one
// mutex — the "critical section" rung of the strategy ladder (stage 2,
// OpenMP `#pragma omp critical`). It deliberately serialises all updates.
type CriticalAccumulator struct {
	mu     sync.Mutex
	sums   []float64
	counts []int64
}

// NewCriticalAccumulator allocates an accumulator with n float slots and
// m count slots.
func NewCriticalAccumulator(n, m int) *CriticalAccumulator {
	return &CriticalAccumulator{sums: make([]float64, n), counts: make([]int64, m)}
}

// AddSum adds delta to float slot i under the lock.
func (c *CriticalAccumulator) AddSum(i int, delta float64) {
	c.mu.Lock()
	c.sums[i] += delta
	c.mu.Unlock()
}

// AddCount adds delta to count slot i under the lock.
func (c *CriticalAccumulator) AddCount(i int, delta int64) {
	c.mu.Lock()
	c.counts[i] += delta
	c.mu.Unlock()
}

// Update applies an arbitrary mutation under the lock.
func (c *CriticalAccumulator) Update(f func(sums []float64, counts []int64)) {
	c.mu.Lock()
	f(c.sums, c.counts)
	c.mu.Unlock()
}

// Sums returns the float slots. Callers must not mutate concurrently with
// Add* calls.
func (c *CriticalAccumulator) Sums() []float64 { return c.sums }

// Counts returns the count slots.
func (c *CriticalAccumulator) Counts() []int64 { return c.counts }

// AtomicAccumulator is the same shape as CriticalAccumulator but each slot
// is updated with lock-free atomics (stage 3).
type AtomicAccumulator struct {
	sums   []AtomicFloat64
	counts []int64
}

// NewAtomicAccumulator allocates an accumulator with n float slots and m
// count slots.
func NewAtomicAccumulator(n, m int) *AtomicAccumulator {
	return &AtomicAccumulator{sums: make([]AtomicFloat64, n), counts: make([]int64, m)}
}

// AddSum atomically adds delta to float slot i.
func (a *AtomicAccumulator) AddSum(i int, delta float64) { a.sums[i].Add(delta) }

// AddCount atomically adds delta to count slot i.
func (a *AtomicAccumulator) AddCount(i int, delta int64) { atomic.AddInt64(&a.counts[i], delta) }

// Sum returns float slot i.
func (a *AtomicAccumulator) Sum(i int) float64 { return a.sums[i].Load() }

// Count returns count slot i.
func (a *AtomicAccumulator) Count(i int) int64 { return atomic.LoadInt64(&a.counts[i]) }
