package par

import "sync"

// Pool is a set of persistent workers that execute successive parallel
// loops without re-spawning goroutines — the shared-memory analogue of an
// OpenMP parallel region enclosing many worksharing loops (and of the
// coforall-vs-forall trade the heat assignment studies across nodes).
// Create once, call For many times, Close when done.
type Pool struct {
	workers int

	mu    sync.Mutex
	cond  *sync.Cond
	phase uint64
	body  func(lo, hi, w int)
	n     int

	doneMu   sync.Mutex
	doneCond *sync.Cond
	pending  int

	closed bool
	wg     sync.WaitGroup
}

// NewPool starts workers persistent goroutines (<= 0 means GOMAXPROCS).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.doneCond = sync.NewCond(&p.doneMu)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.run(w)
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) run(w int) {
	defer p.wg.Done()
	lastPhase := uint64(0)
	for {
		p.mu.Lock()
		for p.phase == lastPhase && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		lastPhase = p.phase
		body, n := p.body, p.n
		p.mu.Unlock()

		lo := w * n / p.workers
		hi := (w + 1) * n / p.workers
		if lo < hi {
			body(lo, hi, w)
		}

		p.doneMu.Lock()
		p.pending--
		if p.pending == 0 {
			p.doneCond.Broadcast()
		}
		p.doneMu.Unlock()
	}
}

// For runs body(i) for i in [0, n) across the pool's workers with static
// scheduling and blocks until the loop completes. Not safe for concurrent
// For calls on one pool (like nested OpenMP worksharing, it is undefined).
func (p *Pool) For(n int, body func(i int)) {
	p.ForRange(n, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRange runs body over static subranges of [0, n), passing the worker
// id, and blocks until every worker finishes.
func (p *Pool) ForRange(n int, body func(lo, hi, w int)) {
	if n <= 0 {
		return
	}
	if p.closed {
		panic("par: ForRange on closed Pool")
	}
	p.doneMu.Lock()
	p.pending = p.workers
	p.doneMu.Unlock()

	p.mu.Lock()
	p.body = body
	p.n = n
	p.phase++
	p.mu.Unlock()
	p.cond.Broadcast()

	p.doneMu.Lock()
	for p.pending > 0 {
		p.doneCond.Wait()
	}
	p.doneMu.Unlock()
}

// Close stops the workers; the pool cannot be reused.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}
