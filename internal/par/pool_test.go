package par

import (
	"sync/atomic"
	"testing"
)

func TestPoolForCoversAll(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for round := 0; round < 20; round++ {
		n := 100 + round*37
		seen := make([]int32, n)
		p.For(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("round %d index %d visited %d times", round, i, c)
			}
		}
	}
}

func TestPoolWorkerIDs(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var mask int32
	p.ForRange(3, func(_, _, w int) { atomic.AddInt32(&mask, 1<<w) })
	if mask != 7 {
		t.Errorf("worker mask %b", mask)
	}
}

func TestPoolEmptyLoop(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var called int32
	p.For(0, func(int) { atomic.StoreInt32(&called, 1) })
	if atomic.LoadInt32(&called) != 0 {
		t.Error("body ran for empty loop")
	}
}

func TestPoolMoreWorkersThanWork(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var count int32
	p.For(3, func(int) { atomic.AddInt32(&count, 1) })
	if count != 3 {
		t.Errorf("count %d", count)
	}
}

func TestPoolMatchesForResult(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 5000
	a := make([]float64, n)
	b := make([]float64, n)
	p.For(n, func(i int) { a[i] = float64(i) * 1.5 })
	For(n, 4, func(i int) { b[i] = float64(i) * 1.5 })
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pool and For disagree")
		}
	}
}

func TestPoolCloseThenForPanics(t *testing.T) {
	p := NewPool(2)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Error("For on closed pool did not panic")
		}
	}()
	p.For(1, func(int) {})
}

func TestPoolDefaultWorkers(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() != DefaultWorkers() {
		t.Errorf("workers %d", p.Workers())
	}
}

// BenchmarkPoolVsSpawn quantifies the per-loop overhead that persistent
// workers amortise (the shared-memory version of the C7 comparison).
func BenchmarkPoolVsSpawn(b *testing.B) {
	const n = 64 // tiny body: overhead dominates
	b.Run("SpawnPerLoop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			For(n, 4, func(int) {})
		}
	})
	b.Run("PersistentPool", func(b *testing.B) {
		p := NewPool(4)
		defer p.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.For(n, func(int) {})
		}
	})
}
