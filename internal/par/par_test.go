package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIterations(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 5, 100, 1001} {
			seen := make([]int32, n)
			For(n, workers, func(i int) { atomic.AddInt32(&seen[i], 1) })
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForRangeSchedulesCoverAll(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		for _, workers := range []int{1, 2, 4, 9} {
			n := 1237
			seen := make([]int32, n)
			ForRange(n, workers, sched, 10, func(lo, hi, _ int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("sched=%v workers=%d: index %d visited %d times", sched, workers, i, c)
				}
			}
		}
	}
}

func TestForRangeWorkerIDsInRange(t *testing.T) {
	const workers = 4
	var bad int32
	ForRange(1000, workers, Dynamic, 16, func(lo, hi, w int) {
		if w < 0 || w >= workers {
			atomic.AddInt32(&bad, 1)
		}
	})
	if bad != 0 {
		t.Error("worker id out of range")
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	var called int32
	For(0, 4, func(int) { atomic.StoreInt32(&called, 1) })
	ForRange(-5, 4, Static, 0, func(_, _, _ int) { atomic.StoreInt32(&called, 1) })
	if atomic.LoadInt32(&called) != 0 {
		t.Error("body called for empty range")
	}
}

func TestReduceSum(t *testing.T) {
	got := SumInt(1000, 4, func(i int) int { return i })
	if want := 999 * 1000 / 2; got != want {
		t.Errorf("SumInt = %d, want %d", got, want)
	}
}

func TestReduceMatchesSerialProperty(t *testing.T) {
	f := func(n uint8, workers uint8) bool {
		nn := int(n)
		w := int(workers%8) + 1
		par := SumFloat64(nn, w, func(i int) float64 { return float64(i) * 1.5 })
		ser := 0.0
		for i := 0; i < nn; i++ {
			ser += float64(i) * 1.5
		}
		return par == ser
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReduceEmpty(t *testing.T) {
	got := Reduce(0, 4, func() int { return 7 }, func(a int, i int) int { return a + i }, func(a, b int) int { return a + b })
	if got != 7 {
		t.Errorf("empty Reduce = %d, want identity 7", got)
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c int32
	Do(
		func() { atomic.StoreInt32(&a, 1) },
		func() { atomic.StoreInt32(&b, 2) },
		func() { atomic.StoreInt32(&c, 3) },
	)
	if a != 1 || b != 2 || c != 3 {
		t.Error("Do did not run all sections")
	}
}

func TestAtomicFloat64Add(t *testing.T) {
	var f AtomicFloat64
	For(10000, 8, func(int) { f.Add(0.5) })
	if got := f.Load(); got != 5000 {
		t.Errorf("atomic add total = %v, want 5000", got)
	}
}

func TestAtomicFloat64StoreLoad(t *testing.T) {
	var f AtomicFloat64
	f.Store(-3.25)
	if f.Load() != -3.25 {
		t.Error("store/load mismatch")
	}
}

func TestCriticalAccumulator(t *testing.T) {
	acc := NewCriticalAccumulator(3, 3)
	For(3000, 8, func(i int) {
		acc.AddSum(i%3, 1.0)
		acc.AddCount(i%3, 1)
	})
	for s := 0; s < 3; s++ {
		if acc.Sums()[s] != 1000 {
			t.Errorf("slot %d sum = %v, want 1000", s, acc.Sums()[s])
		}
		if acc.Counts()[s] != 1000 {
			t.Errorf("slot %d count = %d, want 1000", s, acc.Counts()[s])
		}
	}
}

func TestCriticalAccumulatorUpdate(t *testing.T) {
	acc := NewCriticalAccumulator(1, 1)
	For(100, 4, func(int) {
		acc.Update(func(sums []float64, counts []int64) {
			sums[0] += 2
			counts[0]++
		})
	})
	if acc.Sums()[0] != 200 || acc.Counts()[0] != 100 {
		t.Error("Update lost increments")
	}
}

func TestAtomicAccumulator(t *testing.T) {
	acc := NewAtomicAccumulator(4, 4)
	For(4000, 8, func(i int) {
		acc.AddSum(i%4, 0.25)
		acc.AddCount(i%4, 2)
	})
	for s := 0; s < 4; s++ {
		if acc.Sum(s) != 250 {
			t.Errorf("slot %d sum = %v, want 250", s, acc.Sum(s))
		}
		if acc.Count(s) != 2000 {
			t.Errorf("slot %d count = %d, want 2000", s, acc.Count(s))
		}
	}
}

func TestScheduleString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Error("schedule names wrong")
	}
	if Schedule(99).String() != "unknown" {
		t.Error("unknown schedule name wrong")
	}
}

func BenchmarkReductionStrategies(b *testing.B) {
	const n, slots = 100000, 16
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i % slots
	}
	b.Run("Critical", func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			acc := NewCriticalAccumulator(slots, slots)
			For(n, 0, func(i int) { acc.AddSum(idx[i], 1) })
		}
	})
	b.Run("Atomic", func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			acc := NewAtomicAccumulator(slots, slots)
			For(n, 0, func(i int) { acc.AddSum(idx[i], 1) })
		}
	})
	b.Run("Reduction", func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			Reduce(n, 0,
				func() []float64 { return make([]float64, slots) },
				func(acc []float64, i int) []float64 { acc[idx[i]]++; return acc },
				func(a, bb []float64) []float64 {
					for s := range a {
						a[s] += bb[s]
					}
					return a
				})
		}
	})
}
