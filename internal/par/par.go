// Package par provides shared-memory parallel building blocks in the style
// of OpenMP worksharing: parallel for loops with static, dynamic and guided
// scheduling, and the three race-condition resolution strategies the
// K-means assignment teaches (paper §3): critical sections, atomic
// operations, and private-copy reductions.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Schedule selects how ForRange distributes iterations over workers,
// mirroring OpenMP's schedule(static|dynamic|guided) clauses.
type Schedule int

const (
	// Static divides the range into one contiguous block per worker.
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks from a shared counter.
	Dynamic
	// Guided hands out shrinking chunks (remaining/2P, floored at the
	// chunk size).
	Guided
)

// String returns the OpenMP-style name of the schedule.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	}
	return "unknown"
}

// DefaultWorkers returns the worker count used when a caller passes
// workers <= 0: the number of usable CPUs.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

func normWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For runs body(i) for every i in [0, n) using the given number of workers
// with static scheduling. It blocks until all iterations complete.
func For(n, workers int, body func(i int)) {
	ForRange(n, workers, Static, 0, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRange runs body over subranges [lo, hi) of [0, n) according to the
// schedule. chunk is the dynamic/guided chunk size (minimum grain); it is
// ignored for Static and defaults to 64 when <= 0. body additionally
// receives the worker id in [0, workers) so callers can maintain private
// per-worker state (the "reduction" strategy).
func ForRange(n, workers int, sched Schedule, chunk int, body func(lo, hi, worker int)) {
	if n <= 0 {
		return
	}
	workers = normWorkers(workers, n)
	if workers == 1 {
		body(0, n, 0)
		return
	}
	if chunk <= 0 {
		chunk = 64
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	switch sched {
	case Static:
		for w := 0; w < workers; w++ {
			lo := w * n / workers
			hi := (w + 1) * n / workers
			go func(lo, hi, w int) {
				defer wg.Done()
				if lo < hi {
					body(lo, hi, w)
				}
			}(lo, hi, w)
		}
	case Dynamic:
		var next int64
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					lo := int(atomic.AddInt64(&next, int64(chunk))) - chunk
					if lo >= n {
						return
					}
					hi := lo + chunk
					if hi > n {
						hi = n
					}
					body(lo, hi, w)
				}
			}(w)
		}
	case Guided:
		var mu sync.Mutex
		next := 0
		take := func() (int, int) {
			mu.Lock()
			defer mu.Unlock()
			if next >= n {
				return -1, -1
			}
			remaining := n - next
			size := remaining / (2 * workers)
			if size < chunk {
				size = chunk
			}
			if size > remaining {
				size = remaining
			}
			lo := next
			next += size
			return lo, next
		}
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					lo, hi := take()
					if lo < 0 {
						return
					}
					body(lo, hi, w)
				}
			}(w)
		}
	}
	wg.Wait()
}

// Do runs each function concurrently and waits for all of them, like an
// OpenMP sections construct.
func Do(fns ...func()) {
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}

// Reduce computes a parallel reduction over [0, n): each worker folds its
// iterations into a private accumulator seeded by identity(), and the
// per-worker results are merged left-to-right with merge. This is the
// "stage 4" strategy of the K-means assignment: no shared mutable state at
// all during the loop.
func Reduce[T any](n, workers int, identity func() T, fold func(acc T, i int) T, merge func(a, b T) T) T {
	workers = normWorkers(workers, n)
	if n <= 0 {
		return identity()
	}
	accs := make([]T, workers)
	ForRange(n, workers, Static, 0, func(lo, hi, w int) {
		acc := identity()
		for i := lo; i < hi; i++ {
			acc = fold(acc, i)
		}
		accs[w] = acc
	})
	out := accs[0]
	for _, a := range accs[1:] {
		out = merge(out, a)
	}
	return out
}

// SumFloat64 is a convenience reduction: the parallel sum of f(i).
func SumFloat64(n, workers int, f func(i int) float64) float64 {
	return Reduce(n, workers,
		func() float64 { return 0 },
		func(acc float64, i int) float64 { return acc + f(i) },
		func(a, b float64) float64 { return a + b })
}

// SumInt is a convenience reduction: the parallel sum of f(i).
func SumInt(n, workers int, f func(i int) int) int {
	return Reduce(n, workers,
		func() int { return 0 },
		func(acc int, i int) int { return acc + f(i) },
		func(a, b int) int { return a + b })
}
