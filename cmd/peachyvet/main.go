// Command peachyvet is the repo's SPMD/concurrency linter: go vet-style
// checks that know the cluster substrate's collective-matching contract,
// the par package's pool discipline, and the hazards of goroutine-per-rank
// closures. Beyond the per-function rules it builds per-function
// communication summaries and a call graph, so protocol bugs hidden
// behind helper boundaries (mismatched collectives, orphaned tags,
// static Recv wait-cycles) are caught interprocedurally. Run it over the
// whole module:
//
//	go run ./cmd/peachyvet ./...
//	go run ./cmd/peachyvet -json ./...   # machine-readable findings
//	go run ./cmd/peachyvet -sarif ./...  # SARIF 2.1.0 for CI annotation
//
// Exit codes: 0 when clean, 1 when any rule fires, 2 on usage errors or
// when input fails to load (a file that does not parse is reported as a
// finding with rule "load"). The tool is wired into ./scripts/check.sh
// as part of the tier-1 gate. Graders can point it at a student
// submission directory the same way (or via `peachy vet`).
package main

import (
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:], os.Stdout, os.Stderr))
}
