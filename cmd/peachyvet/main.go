// Command peachyvet is the repo's SPMD/concurrency linter: go vet-style
// checks that know the cluster substrate's collective-matching contract,
// the par package's pool discipline, and the hazards of goroutine-per-rank
// closures. Run it over the whole module:
//
//	go run ./cmd/peachyvet ./...
//
// It exits 0 when clean, 1 when any rule fires, and is wired into
// ./scripts/check.sh as part of the tier-1 gate. Graders can point it at a
// student submission directory the same way (or via `peachy vet`).
package main

import (
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:], os.Stdout, os.Stderr))
}
