// Command knn runs the k-Nearest-Neighbor assignment (paper §2) on a
// synthetic classification instance or a CSV database, with every variant
// the assignment discusses:
//
//	knn -n 5000 -q 5000 -d 40 -k 15 -variant heap
//	knn -variant mapreduce -ranks 8 -combiner=false
//	knn -db points.csv -variant kdtree
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataio"
	"repro/internal/knn"
	"repro/internal/obs"
	"repro/internal/spatial"
)

func main() {
	n := flag.Int("n", 5000, "database size (synthetic mode)")
	q := flag.Int("q", 1000, "query count")
	d := flag.Int("d", 40, "dimensions (synthetic mode)")
	k := flag.Int("k", 15, "neighbours to vote")
	classes := flag.Int("classes", 4, "classes (synthetic mode)")
	seed := flag.Uint64("seed", 1, "dataset seed")
	variant := flag.String("variant", "heap", "sort | heap | parallel | kdtree | mapreduce")
	workers := flag.Int("workers", 0, "parallel workers (0 = all cores)")
	ranks := flag.Int("ranks", 4, "cluster ranks for -variant mapreduce")
	combiner := flag.Bool("combiner", true, "use local reductions in mapreduce")
	dbPath := flag.String("db", "", "CSV database (cols: x1..xd,label); overrides synthetic")
	obsCLI := obs.BindCLI()
	flag.Parse()

	var db *dataio.Dataset
	var queries [][]float64
	var labels []int
	if *dbPath != "" {
		// Parallel byte-range parsing: the assignment's parallel-IO path.
		full, err := dataio.LoadCSVParallel(*dbPath, *workers)
		if err != nil {
			fatal(err)
		}
		nn := full.Len() - *q
		if nn < 1 {
			fatal(fmt.Errorf("database too small for %d queries", *q))
		}
		var rest *dataio.Dataset
		db, rest = full.Split(nn)
		queries, labels = rest.Points, rest.Labels
	} else {
		full := dataio.GaussianMixture(*seed, *n+*q, *d, *classes, 4.0)
		var rest *dataio.Dataset
		db, rest = full.Split(*n)
		queries, labels = rest.Points, rest.Labels
	}

	start := time.Now()
	var trace *obs.Trace
	var pred []int
	lead := true // the process that reports the once-per-world result
	switch *variant {
	case "sort", "heap", "parallel", "kdtree":
		var rec *obs.Recorder
		if obsCLI.Enabled() {
			trace = obs.NewTrace(1)
			rec = trace.Rank(0)
		}
		srv, err := obsCLI.Serve(trace, obs.ServerInfo{Rank: -1, World: 1, Device: "local"})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		wall := rec.Now()
		switch *variant {
		case "sort":
			pred = knn.SequentialSort(db, queries, *k)
		case "heap":
			pred = knn.SequentialHeap(db, queries, *k)
		case "parallel":
			pred = knn.Parallel(db, queries, *k, *workers)
		case "kdtree":
			tree := spatial.NewKDTreeParallel(db.Points, db.Labels, *workers)
			pred = knn.KDTree(tree, queries, *k, *workers)
		}
		rec.WallSpan("knn."+*variant, wall,
			obs.KV{K: "queries", V: int64(len(queries))}, obs.KV{K: "db", V: int64(db.Len())})
	case "mapreduce":
		// In-process world of -ranks goroutines, or — under `peachy
		// launch` — this process's single rank of a multi-process world.
		world, err := cluster.OpenWorld(*ranks, cluster.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		defer world.Close()
		lead = world.Lead()
		if obsCLI.Enabled() {
			trace = world.Observe()
		}
		srv, err := obsCLI.Serve(trace, world.ObsInfo())
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		pred, err = knn.MapReduce(world, db, queries, *k, *combiner)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cluster: %d messages, %d bytes, simulated comm time %.2g s\n",
			world.TotalMessages(), world.TotalBytes(), world.SimTime())
	default:
		fatal(fmt.Errorf("unknown variant %q", *variant))
	}
	elapsed := time.Since(start)
	if err := obsCLI.Emit(trace); err != nil {
		fatal(err)
	}

	// Predictions are gathered to rank 0, so only the lead process can
	// score them; in a launched world the other ranks stop here.
	if lead {
		fmt.Printf("variant=%s n=%d q=%d d=%d k=%d: %.3fs, accuracy %.4f\n",
			*variant, db.Len(), len(queries), db.Dim, *k,
			elapsed.Seconds(), knn.Accuracy(pred, labels))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "knn:", err)
	os.Exit(1)
}
