// Command traffic runs the Nagel-Schreckenberg assignment (paper §5):
//
//	traffic -cars 200 -len 1000 -p 0.13 -vmax 5 -steps 500 -out fig3.pgm
//	traffic -check-repro            # verify identical output for 1..16 workers
//	traffic -mode per-worker-seeds  # the irreproducible ablation
//	traffic -mode no-random         # the jam-free ablation
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/traffic"
	"repro/internal/viz"
)

func main() {
	cars := flag.Int("cars", 200, "number of cars")
	roadLen := flag.Int("len", 1000, "road length in cells")
	vmax := flag.Int("vmax", 5, "maximum velocity")
	p := flag.Float64("p", 0.13, "dawdling probability")
	steps := flag.Int("steps", 500, "time steps")
	seed := flag.Uint64("seed", 2023, "PRNG seed")
	workers := flag.Int("workers", 0, "parallel workers (0 = all cores)")
	mode := flag.String("mode", "shared-sequence", "shared-sequence | per-worker-seeds | no-random")
	out := flag.String("out", "", "write the space-time diagram to this .pgm file")
	checkRepro := flag.Bool("check-repro", false, "verify serial == parallel for several worker counts")
	grid := flag.Bool("grid", false, "use the grid representation instead of agent-based")
	open := flag.Bool("open", false, "open boundaries: inject at the left, exit at the right")
	alpha := flag.Float64("alpha", 0.3, "injection probability for -open")
	ranks := flag.Int("ranks", 0, "run distributed over this many simulated cluster ranks")
	obsCLI := obs.BindCLI()
	flag.Parse()

	cfg := traffic.Config{Cars: *cars, RoadLen: *roadLen, VMax: *vmax, P: *p, Seed: *seed}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	var m traffic.RNGMode
	switch *mode {
	case "shared-sequence":
		m = traffic.SharedSequence
	case "per-worker-seeds":
		m = traffic.PerWorkerSeeds
	case "no-random":
		m = traffic.NoRandom
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	if *checkRepro {
		ref, _ := traffic.New(cfg)
		ref.RunSerial(*steps)
		want := ref.Fingerprint()
		ok := true
		for _, w := range []int{1, 2, 3, 4, 8, 16} {
			s, _ := traffic.New(cfg)
			s.RunParallel(*steps, w, traffic.SharedSequence)
			match := s.Fingerprint() == want
			ok = ok && match
			fmt.Printf("workers=%2d fingerprint=%016x match=%v\n", w, s.Fingerprint(), match)
		}
		if !ok {
			fatal(fmt.Errorf("reproducibility check FAILED"))
		}
		fmt.Println("reproducibility check PASSED: parallel output identical to serial")
		return
	}

	if *out != "" {
		rows, err := traffic.SpaceTime(cfg, *steps, m)
		if err != nil {
			fatal(err)
		}
		img := viz.NewGray(cfg.RoadLen, len(rows))
		for t, row := range rows {
			for x, v := range row {
				if v > 0 {
					img.Set(x, t, uint8(40*(v-1)))
				}
			}
		}
		if err := viz.SaveRaster(*out, img); err != nil {
			fatal(err)
		}
		fmt.Printf("space-time diagram (%dx%d) written to %s\n", cfg.RoadLen, len(rows), *out)
		return
	}

	if *open {
		s, err := traffic.NewOpen(cfg, *alpha)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		s.Run(*steps)
		fmt.Printf("open road: %d steps in %.3fs, throughput %.3f cars/step, density %.3f\n",
			*steps, time.Since(start).Seconds(), s.Throughput(), s.Density())
		return
	}

	if *grid {
		g, err := traffic.NewGrid(cfg)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		g.RunSerial(*steps)
		fmt.Printf("grid representation: %d steps in %.3fs, fingerprint %016x\n",
			*steps, time.Since(start).Seconds(), g.Fingerprint())
		return
	}

	s, err := traffic.New(cfg)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	var trace *obs.Trace
	lead := true // the process that reports the once-per-world result
	if *ranks > 0 {
		// In-process world of -ranks goroutines, or — under `peachy
		// launch` — this process's single rank of a multi-process world.
		world, err := cluster.OpenWorld(*ranks, cluster.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		defer world.Close()
		lead = world.Lead()
		if obsCLI.Enabled() {
			trace = world.Observe()
		}
		srv, err := obsCLI.Serve(trace, world.ObsInfo())
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		if err := s.RunCluster(world, *steps); err != nil {
			fatal(err)
		}
		fmt.Printf("cluster: %d messages, %d bytes, simulated time %.2g s\n",
			world.TotalMessages(), world.TotalBytes(), world.SimTime())
	} else {
		var rec *obs.Recorder
		if obsCLI.Enabled() {
			trace = obs.NewTrace(1)
			rec = trace.Rank(0)
		}
		srv, err := obsCLI.Serve(trace, obs.ServerInfo{Rank: -1, World: 1, Device: "local"})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		wall := rec.Now()
		s.RunParallel(*steps, *workers, m)
		rec.WallSpan("traffic.parallel", wall,
			obs.KV{K: "steps", V: int64(*steps)}, obs.KV{K: "cars", V: int64(*cars)})
	}
	elapsed := time.Since(start)
	if err := obsCLI.Emit(trace); err != nil {
		fatal(err)
	}
	// The gathered final state (and so the fingerprint) exists on rank 0
	// only; in a launched world the other ranks stop here.
	if lead {
		fmt.Printf("cars=%d road=%d p=%.2f vmax=%d steps=%d mode=%s: %.3fs\n",
			*cars, *roadLen, *p, *vmax, *steps, m, elapsed.Seconds())
		fmt.Printf("mean velocity %.3f, flow %.3f cars/cell/step, fingerprint %016x\n",
			s.MeanVelocity(), s.Flow(), s.Fingerprint())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traffic:", err)
	os.Exit(1)
}
