// Command pipeline runs the data-science pipeline assignment (paper §4):
// it generates (or reuses) the four synthetic NYC datasets and executes the
// crime-analysis workflow — cleaning, spatial join, per-100k aggregation,
// offense mix, monthly trend — writing the Figure 2 heat map:
//
//	pipeline -data ./nyc -events 120000 -parts 8 -heatmap heatmap.ppm
//	pipeline -trips      # the second workflow: trips joined with weather
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/nycgen"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/rdd"
	"repro/internal/viz"
)

func main() {
	dataDir := flag.String("data", "", "dataset directory (generated if empty or missing files)")
	events := flag.Int("events", 60000, "total synthetic arrest events")
	seed := flag.Uint64("seed", 42, "city and event seed")
	parts := flag.Int("parts", 8, "dataset partitions")
	corruption := flag.Float64("corruption", 0.03, "fraction of damaged rows")
	heatmap := flag.String("heatmap", "", "write the per-100k heat map to this .ppm file")
	trips := flag.Bool("trips", false, "run the trips/weather pipeline instead")
	obsCLI := obs.BindCLI()
	flag.Parse()

	ctx := rdd.NewContext()
	// The rdd engine is driver-sequential, so the whole pipeline records
	// onto a single-rank trace attached to the context.
	var trace *obs.Trace
	if obsCLI.Enabled() {
		trace = obs.NewTrace(1)
		ctx.SetRecorder(trace.Rank(0))
	}
	srv, err := obsCLI.Serve(trace, obs.ServerInfo{Rank: -1, World: 1, Device: "local"})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	if *trips {
		tripData, weather := pipeline.GenerateTrips(*seed, 300)
		fmt.Printf("trips=%d days=%d\n", len(tripData), len(weather))
		for _, s := range pipeline.TripsPipeline(ctx, tripData, weather, *parts) {
			fmt.Println(s)
		}
		if err := obsCLI.Emit(trace); err != nil {
			fatal(err)
		}
		return
	}

	dir := *dataDir
	if dir == "" {
		dir = "nyc_data"
	}
	if _, err := os.Stat(dir + "/arrests_historic.csv"); err != nil {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		city := nycgen.NewCity(*seed, 10, 6)
		if _, err := city.ExportAll(dir, *seed+1, *events*2/3, *events/3, *corruption); err != nil {
			fatal(err)
		}
		fmt.Printf("generated synthetic datasets in %s\n", dir)
	}

	rep, err := pipeline.CrimePipeline(ctx, dir, *parts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("rows: %d total -> %d clean -> %d located (dropped %.1f%%)\n",
		rep.TotalRows, rep.CleanRows, rep.LocatedRows,
		100*float64(rep.TotalRows-rep.CleanRows)/float64(rep.TotalRows))
	fmt.Printf("engine: %d shuffles, %d shuffled records, %d tasks\n",
		ctx.ShuffleCount(), ctx.ShuffledRecords(), ctx.TaskCount())
	if err := obsCLI.Emit(trace); err != nil {
		fatal(err)
	}

	fmt.Println("\nTop NTAs by arrests per 100k:")
	for _, c := range rep.TopNTAs(8) {
		fmt.Printf("  %-8s %6d\n", c.Key, c.N)
	}
	fmt.Println("\nOffense mix:")
	for _, c := range rep.OffenseCounts {
		fmt.Printf("  %-10s %6d\n", c.Key, c.N)
	}

	if *heatmap != "" {
		img := rep.RenderHeatMap(500, 300)
		if err := viz.SaveRaster(*heatmap, img); err != nil {
			fatal(err)
		}
		fmt.Printf("\nheat map written to %s\n", *heatmap)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipeline:", err)
	os.Exit(1)
}
