// Command ensemble runs the hyper-parameter-optimisation assignment
// (paper §7): train an HPO grid of small networks on synthetic digits as
// independent tasks over simulated cluster ranks, ensemble the results,
// and report accuracy plus uncertainty separation:
//
//	ensemble -members 10 -ranks 4 -dynamic
//	ensemble -cull 0.5          # the kill-the-worst variation
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/ensemble"
	"repro/internal/mnistgen"
	"repro/internal/obs"
)

func main() {
	trainN := flag.Int("train", 2500, "training images")
	members := flag.Int("members", 8, "HPO grid size / ensemble members")
	epochs := flag.Int("epochs", 6, "training epochs per member")
	ranks := flag.Int("ranks", 4, "simulated cluster ranks")
	dynamic := flag.Bool("dynamic", false, "manager-worker task farm instead of static blocks")
	cull := flag.Float64("cull", 0, "fraction of worst members to kill after a probe epoch")
	seed := flag.Uint64("seed", 7, "data and HPO seed")
	saveBest := flag.String("save", "", "write the best member's model to this file")
	monitor := flag.Bool("monitor", false, "record per-epoch validation accuracy (runs locally)")
	obsCLI := obs.BindCLI()
	flag.Parse()

	ds := mnistgen.Generate(*seed, *trainN)
	train, val := ds.Split(*trainN * 4 / 5)
	cfgs := ensemble.Grid(
		[][]int{{16}, {24}, {32}},
		[]float64{0.1, 0.05},
		[]float64{0.9, 0.5},
		*epochs, 32, *seed+100)
	if *members < len(cfgs) {
		cfgs = cfgs[:*members]
	}
	fmt.Printf("HPO grid: %d configs, train=%d val=%d\n", len(cfgs), train.Len(), val.Len())

	start := time.Now()
	var trace *obs.Trace
	var ens *ensemble.Ensemble
	if *monitor {
		e, trajs := ensemble.TrainWithMonitor(train, val, cfgs, 0, 0)
		ens = e
		for i, tr := range trajs {
			fmt.Printf("member %d accuracy per epoch: ", i)
			for _, a := range tr.ValAccuracy {
				fmt.Printf("%.3f ", a)
			}
			fmt.Println()
		}
	} else if *cull > 0 {
		ens = ensemble.TrainWithCulling(train, val, cfgs, 0, 1, *cull)
		fmt.Printf("culling kept %d of %d members\n", len(ens.Members), len(cfgs))
	} else {
		// In-process world of -ranks goroutines, or — under `peachy
		// launch` — this process's single rank of a multi-process world.
		world, err := cluster.OpenWorld(*ranks, cluster.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		defer world.Close()
		if obsCLI.Enabled() {
			trace = world.Observe()
		}
		srv, err := obsCLI.Serve(trace, world.ObsInfo())
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		e, report, err := ensemble.TrainDistributed(world, train, val, cfgs, *dynamic)
		if err != nil {
			fatal(err)
		}
		ens = e
		if ens != nil {
			mode := "static"
			if *dynamic {
				mode = "dynamic"
			}
			fmt.Printf("distribution: %s over %d ranks, per-rank loads %v (imbalance %.2f)\n",
				mode, world.Size(), report.PerRank, report.Imbalance())
		}
	}
	fmt.Printf("training wall time: %.2fs\n", time.Since(start).Seconds())
	if err := obsCLI.Emit(trace); err != nil {
		fatal(err)
	}
	if ens == nil {
		// Launched non-lead rank: the gathered ensemble lives in the
		// rank-0 process, which does all the reporting.
		return
	}

	best := ens.Best()
	fmt.Printf("best member: %s -> val accuracy %.3f\n", best.Cfg, best.ValAccuracy)
	fmt.Printf("ensemble val accuracy: %.3f\n", ens.Evaluate(val))

	clean := mnistgen.Generate(*seed+999, 300)
	ood := mnistgen.GenerateOOD(*seed+999, 300)
	fmt.Printf("mean predictive entropy: clean %.3f nats, OOD %.3f nats\n",
		ens.MeanUncertainty(clean), ens.MeanUncertainty(ood))

	if *saveBest != "" {
		if err := best.Net.Save(*saveBest); err != nil {
			fatal(err)
		}
		fmt.Printf("best model saved to %s\n", *saveBest)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ensemble:", err)
	os.Exit(1)
}
