// Command kmeans runs the K-means clustering assignment (paper §3) with a
// chosen parallelisation strategy, or distributed over simulated ranks:
//
//	kmeans -n 200000 -d 4 -k 16 -strategy reduction
//	kmeans -distributed -ranks 8
//	kmeans -in points.csv -k 5 -strategy atomic
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataio"
	"repro/internal/kmeans"
	"repro/internal/obs"
)

func main() {
	n := flag.Int("n", 100000, "points (synthetic mode)")
	d := flag.Int("d", 4, "dimensions (synthetic mode)")
	k := flag.Int("k", 8, "clusters")
	seed := flag.Uint64("seed", 1, "seed for data and initial centroids")
	maxIter := flag.Int("maxiter", 100, "iteration cap")
	minChanges := flag.Int("minchanges", 0, "stop when changes <= this")
	strategy := flag.String("strategy", "reduction", "sequential | critical | atomic | reduction")
	workers := flag.Int("workers", 0, "workers (0 = all cores)")
	distributed := flag.Bool("distributed", false, "run on simulated cluster ranks")
	ranks := flag.Int("ranks", 4, "ranks when -distributed")
	inPath := flag.String("in", "", "CSV input (cols: x1..xd,label); overrides synthetic")
	obsCLI := obs.BindCLI()
	flag.Parse()

	var points [][]float64
	if *inPath != "" {
		ds, err := dataio.LoadCSV(*inPath)
		if err != nil {
			fatal(err)
		}
		points = ds.Points
	} else {
		points = dataio.GaussianMixture(*seed, *n, *d, *k, 3.0).Points
	}

	strat := map[string]kmeans.Strategy{
		"sequential": kmeans.Sequential,
		"critical":   kmeans.Critical,
		"atomic":     kmeans.Atomic,
		"reduction":  kmeans.Reduction,
	}[*strategy]
	opts := kmeans.Options{
		K: *k, Seed: *seed, MaxIter: *maxIter, MinChanges: *minChanges,
		Workers: *workers, Strategy: strat,
	}

	start := time.Now()
	var trace *obs.Trace
	var res *kmeans.Result
	lead := true // the process that prints the once-per-world result
	if *distributed {
		// In-process world of -ranks goroutines, or — when spawned by
		// `peachy launch` — this process's single rank of a multi-process
		// world on the net device.
		world, err := cluster.OpenWorld(*ranks, cluster.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		defer world.Close()
		lead = world.Lead()
		if obsCLI.Enabled() {
			trace = world.Observe()
		}
		srv, err := obsCLI.Serve(trace, world.ObsInfo())
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		res, err = kmeans.RunDistributed(world, points, opts)
		if err != nil {
			fatal(err)
		}
		scope := ""
		if world.Launched() {
			scope = fmt.Sprintf(" (rank %d of %d)", world.LocalRank(), world.Size())
		}
		fmt.Printf("cluster%s: %d messages, %d bytes, simulated time %.2g s\n",
			scope, world.TotalMessages(), world.TotalBytes(), world.SimTime())
	} else {
		var rec *obs.Recorder
		if obsCLI.Enabled() {
			trace = obs.NewTrace(1)
			rec = trace.Rank(0)
		}
		srv, err := obsCLI.Serve(trace, obs.ServerInfo{Rank: -1, World: 1, Device: "local"})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		wall := rec.Now()
		res = kmeans.Run(points, opts)
		rec.WallSpan("kmeans."+*strategy, wall,
			obs.KV{K: "points", V: int64(len(points))}, obs.KV{K: "iterations", V: int64(res.Iterations)})
	}
	elapsed := time.Since(start)
	if err := obsCLI.Emit(trace); err != nil {
		fatal(err)
	}

	// Only the lead process reports the global result: in a launched
	// world the gathered assignment (and so WCSS) exists on rank 0 only,
	// and the numbers are identical to an in-process run anyway.
	if lead {
		fmt.Printf("n=%d d=%d K=%d strategy=%s: %.3fs, %d iterations (converged=%v), WCSS=%.2f\n",
			len(points), len(points[0]), *k, *strategy,
			elapsed.Seconds(), res.Iterations, res.Converged, res.WCSS(points))
		if len(res.ChangesPerIter) > 0 {
			fmt.Printf("cluster changes per iteration: %v\n", res.ChangesPerIter)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kmeans:", err)
	os.Exit(1)
}
