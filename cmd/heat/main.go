// Command heat runs the 1D heat equation assignment (paper §6) with the
// serial, shared-memory forall, distributed forall, and persistent-task
// coforall solvers:
//
//	heat -nx 1000000 -nt 100 -solver coforall -locales 4
//	heat -solver forall -locales 8 -cores 2
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/heat"
	"repro/internal/locale"
	"repro/internal/obs"
)

func main() {
	nx := flag.Int("nx", 100000, "grid cells (including boundaries)")
	nt := flag.Int("nt", 200, "time steps")
	alpha := flag.Float64("alpha", 0.25, "diffusion number (stable <= 0.5)")
	solver := flag.String("solver", "coforall", "serial | local | forall | coforall")
	locales := flag.Int("locales", 4, "simulated compute nodes")
	cores := flag.Int("cores", 2, "cores per locale")
	workers := flag.Int("workers", 0, "workers for -solver local")
	obsCLI := obs.BindCLI()
	flag.Parse()

	p := heat.Problem{Alpha: *alpha, U0: heat.SinInit(*nx), Steps: *nt}
	sys := locale.NewSystem(*locales, *cores)

	start := time.Now()
	var trace *obs.Trace
	var rec *obs.Recorder
	if obsCLI.Enabled() {
		trace = obs.NewTrace(1)
		rec = trace.Rank(0)
	}
	srv, err := obsCLI.Serve(trace, obs.ServerInfo{Rank: -1, World: 1, Device: "local"})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	wall := rec.Now()
	var u []float64
	switch *solver {
	case "serial":
		u, err = heat.SolveSerial(p)
	case "local":
		u, err = heat.SolveLocal(p, *workers)
	case "forall":
		u, err = heat.SolveForall(p, sys)
	case "coforall":
		u, err = heat.SolveCoforall(p, sys)
	default:
		err = fmt.Errorf("unknown solver %q", *solver)
	}
	if err != nil {
		fatal(err)
	}
	rec.WallSpan("heat."+*solver, wall,
		obs.KV{K: "nx", V: int64(*nx)}, obs.KV{K: "nt", V: int64(*nt)})
	elapsed := time.Since(start)
	if err := obsCLI.Emit(trace); err != nil {
		fatal(err)
	}

	// The half-sine initial condition decays by an exact analytic factor,
	// so the solution error is measurable without a reference run.
	decay := math.Pow(heat.DecayFactor(*nx, *alpha), float64(*nt))
	maxErr := 0.0
	u0 := heat.SinInit(*nx)
	for i, v := range u {
		if e := math.Abs(v - u0[i]*decay); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("solver=%s nx=%d nt=%d locales=%dx%d: %.3fs, max error vs analytic %.2e\n",
		*solver, *nx, *nt, *locales, *cores, elapsed.Seconds(), maxErr)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "heat:", err)
	os.Exit(1)
}
