// Command peachy is the umbrella tool for the Peachy Parallel Assignments
// reproduction. Its main job is regenerating the paper's exhibits:
//
//	peachy list                 # show every exhibit id
//	peachy repro                # regenerate all exhibits into ./out
//	peachy repro -quick         # smaller instances (seconds, not minutes)
//	peachy repro -only fig3     # one exhibit
//	peachy repro -out /tmp/out  # choose the output directory
//	peachy vet ./...            # SPMD correctness analysis (peachyvet)
//
// It is also the multi-process world launcher (the repo's mpirun):
//
//	peachy launch -np 4 ./out/kmeans -distributed ...
//
// spawns 4 copies of the binary, each holding one rank on the net
// device, wired over loopback sockets via the PEACHY_* env contract
// that cluster.OpenWorld reads. The observability artifacts such a run
// writes per rank are stitched back together with
//
//	peachy obs-merge out/trace.json.rank*
//
// and validated (per file, plus cross-file conservation for complete
// rank sets) with `peachy obs-lint`.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/cluster/launch"
	"repro/internal/core"
	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "verify":
		passed, total, lines := core.RunChecks()
		for _, l := range lines {
			fmt.Println(l)
		}
		fmt.Printf("\n%d/%d acceptance checks passed\n", passed, total)
		if passed != total {
			os.Exit(1)
		}
	case "vet":
		os.Exit(analysis.Main(os.Args[2:], os.Stdout, os.Stderr))
	case "launch":
		fs := flag.NewFlagSet("launch", flag.ExitOnError)
		np := fs.Int("np", 4, "number of ranks (one process per rank)")
		netw := fs.String("net", "unix", "transport: unix (socket files) | tcp (loopback ports)")
		raw := fs.Bool("raw-output", false, "do not prefix non-root ranks' output lines with [rank r]")
		obsListen := fs.String("obs-listen", "", "serve each rank's live /metrics, /healthz and pprof: rank r listens on this address with the port offset by r")
		_ = fs.Parse(os.Args[2:])
		if fs.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "peachy launch: no program given (usage: peachy launch -np 4 [-net unix|tcp] prog args...)")
			os.Exit(2)
		}
		if err := launch.Run(launch.Config{
			NP: *np, Network: *netw, Argv: fs.Args(), Prefix: !*raw,
			ObsListen: *obsListen,
		}); err != nil {
			fatal(err)
		}
	case "obs-lint":
		paths, err := expandArtifacts(os.Args[2:])
		if err != nil {
			fatal(fmt.Errorf("obs-lint: %w", err))
		}
		if len(paths) == 0 {
			fmt.Fprintln(os.Stderr, "peachy obs-lint: no files given")
			os.Exit(2)
		}
		bad := 0
		blobs := map[string][]byte{}
		for _, path := range paths {
			data, err := os.ReadFile(path)
			if err == nil {
				err = obs.LintFile(data)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "peachy obs-lint: %s: %v\n", path, err)
				bad++
				continue
			}
			blobs[path] = data
			fmt.Printf("%s: ok\n", path)
		}
		// Cross-file pass: any complete per-rank set among the inputs gets
		// the merged-run lint — world-size agreement, rank ownership, and
		// send/recv conservation across the documents.
		bases, groups := rankGroups(paths)
		for _, base := range bases {
			docs := make([][]byte, 0, len(groups[base]))
			for _, p := range groups[base] {
				if blobs[p] == nil {
					docs = nil // a member already failed its own lint
					break
				}
				docs = append(docs, blobs[p])
			}
			if docs == nil {
				continue
			}
			if err := obs.LintMerged(docs); err != nil {
				fmt.Fprintf(os.Stderr, "peachy obs-lint: %s.rank*: %v\n", base, err)
				bad++
				continue
			}
			fmt.Printf("%s.rank* (%d ranks): cross-checks ok\n", base, len(docs))
		}
		if bad > 0 {
			os.Exit(1)
		}
	case "obs-merge":
		fs := flag.NewFlagSet("obs-merge", flag.ExitOnError)
		outPath := fs.String("o", "", "output path (default: the input base path, .rank* stripped)")
		noLint := fs.Bool("no-lint", false, "skip the LintMerged cross-checks before writing")
		_ = fs.Parse(os.Args[2:])
		paths, err := expandArtifacts(fs.Args())
		if err != nil {
			fatal(fmt.Errorf("obs-merge: %w", err))
		}
		if len(paths) == 0 {
			fmt.Fprintln(os.Stderr, "peachy obs-merge: no files given (usage: peachy obs-merge [-o out.json] trace.json.rank*)")
			os.Exit(2)
		}
		base, ordered, err := rankSeries(paths)
		if err != nil {
			fatal(fmt.Errorf("obs-merge: %w", err))
		}
		docs := make([][]byte, len(ordered))
		for r, p := range ordered {
			if docs[r], err = os.ReadFile(p); err != nil {
				fatal(fmt.Errorf("obs-merge: %w", err))
			}
		}
		if !*noLint {
			if err := obs.LintMerged(docs); err != nil {
				fatal(fmt.Errorf("obs-merge: %v", err))
			}
		}
		dst := *outPath
		if dst == "" {
			dst = base
		}
		f, err := os.Create(dst)
		if err != nil {
			fatal(fmt.Errorf("obs-merge: %w", err))
		}
		if err := obs.Merge(f, docs); err != nil {
			f.Close()
			fatal(fmt.Errorf("obs-merge: %w", err))
		}
		if err := f.Close(); err != nil {
			fatal(fmt.Errorf("obs-merge: %w", err))
		}
		fmt.Printf("merged %d ranks into %s\n", len(docs), dst)
	case "list":
		for _, e := range core.AllExhibits() {
			fmt.Printf("%-7s %s\n", e.ID, e.Title)
		}
	case "repro":
		fs := flag.NewFlagSet("repro", flag.ExitOnError)
		out := fs.String("out", "out", "output directory for artifacts")
		quick := fs.Bool("quick", false, "shrink instance sizes for a fast pass")
		only := fs.String("only", "", "regenerate a single exhibit id (see `peachy list`)")
		_ = fs.Parse(os.Args[2:])
		if *only != "" {
			e, ok := core.Find(*only)
			if !ok {
				fmt.Fprintf(os.Stderr, "peachy: unknown exhibit %q\n", *only)
				os.Exit(1)
			}
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
			summary, err := e.Run(*out, *quick)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("# %s — %s\n\n%s\n", e.ID, e.Title, summary)
			return
		}
		if err := core.RunAll(*out, *quick); err != nil {
			fatal(err)
		}
		fmt.Printf("all exhibits regenerated into %s (see repro_report.md)\n", *out)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  peachy list
  peachy repro [-out dir] [-quick] [-only id]
  peachy verify
  peachy vet [-rules r1,r2] [-q] [-json|-sarif] [./... | dir ...]
  peachy obs-lint trace-or-metrics.json ...       (globs ok; complete .rank* sets get cross-file checks)
  peachy obs-merge [-o out.json] [-no-lint] trace.json.rank*
  peachy launch -np 4 [-net unix|tcp] [-raw-output] [-obs-listen host:port] prog args...`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "peachy:", err)
	os.Exit(1)
}
