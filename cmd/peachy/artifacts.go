package main

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Helpers for working with per-rank observability artifact sets — the
// trace.json.rank0..rankP-1 files a `peachy launch` run leaves behind.
// obs-merge folds one complete set into a single document; obs-lint uses
// the same grouping to run cross-file conservation checks on top of the
// per-file lint.

// expandArtifacts expands glob patterns in args (for callers whose shell
// did not) and returns the flat path list.
func expandArtifacts(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		if !strings.ContainsAny(a, "*?[") {
			out = append(out, a)
			continue
		}
		m, err := filepath.Glob(a)
		if err != nil {
			return nil, fmt.Errorf("bad pattern %q: %w", a, err)
		}
		if len(m) == 0 {
			return nil, fmt.Errorf("pattern %q matched no files", a)
		}
		sort.Strings(m)
		out = append(out, m...)
	}
	return out, nil
}

var rankSuffixRe = regexp.MustCompile(`^(.*)\.rank(\d+)$`)

// splitRankPath splits "<base>.rank<r>" into its parts; ok is false for
// paths without the per-rank suffix.
func splitRankPath(path string) (base string, rank int, ok bool) {
	m := rankSuffixRe.FindStringSubmatch(path)
	if m == nil {
		return "", 0, false
	}
	r, err := strconv.Atoi(m[2])
	if err != nil || r < 0 {
		return "", 0, false
	}
	return m[1], r, true
}

// rankSeries validates that paths form exactly one complete per-rank set
// base.rank0 .. base.rank(P-1) and returns them in rank order — numeric
// order, so rank 10 sorts after rank 2 where a lexical sort would not.
func rankSeries(paths []string) (base string, ordered []string, err error) {
	byRank := map[int]string{}
	for _, p := range paths {
		b, r, ok := splitRankPath(p)
		if !ok {
			return "", nil, fmt.Errorf("%s: not a per-rank artifact (want <base>.rank<r>, as written under peachy launch)", p)
		}
		if base == "" {
			base = b
		} else if b != base {
			return "", nil, fmt.Errorf("mixed artifact sets: %s vs %s — merge one run's files at a time", base, b)
		}
		if prev, dup := byRank[r]; dup {
			return "", nil, fmt.Errorf("rank %d appears twice: %s and %s", r, prev, p)
		}
		byRank[r] = p
	}
	for r := 0; r < len(byRank); r++ {
		p, ok := byRank[r]
		if !ok {
			return "", nil, fmt.Errorf("incomplete set for %s: %d files but no rank %d", base, len(byRank), r)
		}
		ordered = append(ordered, p)
	}
	return base, ordered, nil
}

// rankGroups partitions paths into complete per-rank sets (two ranks or
// more), in rank order, keyed and sorted by base path. Paths without the
// suffix, and incomplete or single-file sets, are left out: the caller
// lints those per file only.
func rankGroups(paths []string) (bases []string, groups map[string][]string) {
	byBase := map[string]map[int]string{}
	for _, p := range paths {
		b, r, ok := splitRankPath(p)
		if !ok {
			continue
		}
		if byBase[b] == nil {
			byBase[b] = map[int]string{}
		}
		byBase[b][r] = p
	}
	groups = map[string][]string{}
	for b, byRank := range byBase {
		if len(byRank) < 2 {
			continue
		}
		ordered := make([]string, 0, len(byRank))
		for r := 0; r < len(byRank); r++ {
			p, ok := byRank[r]
			if !ok {
				ordered = nil
				break
			}
			ordered = append(ordered, p)
		}
		if ordered != nil {
			groups[b] = ordered
			bases = append(bases, b)
		}
	}
	sort.Strings(bases)
	return bases, groups
}
