// Package repro's root benchmark suite: one testing.B benchmark per table
// and figure of the paper, as indexed in DESIGN.md §3. Shapes, not
// absolute numbers, are the reproduction target; EXPERIMENTS.md records
// both. Run with:
//
//	go test -bench=. -benchmem .
package repro

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dataio"
	"repro/internal/ensemble"
	"repro/internal/heat"
	"repro/internal/kmeans"
	"repro/internal/knn"
	"repro/internal/locale"
	"repro/internal/mnistgen"
	"repro/internal/nycgen"
	"repro/internal/pipeline"
	"repro/internal/prng"
	"repro/internal/rdd"
	"repro/internal/spatial"
	"repro/internal/taskfarm"
	"repro/internal/traffic"
)

// ---------- Figures ----------

// BenchmarkFig1KMeans2D clusters the Figure 1 instance (2D, K=3).
func BenchmarkFig1KMeans2D(b *testing.B) {
	ds := dataio.GaussianMixture(101, 3000, 2, 3, 6.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kmeans.Run(ds.Points, kmeans.Options{K: 3, Seed: 11})
	}
}

// BenchmarkFig2Pipeline runs the Figure 2 crime pipeline over the four
// synthetic NYC datasets.
func BenchmarkFig2Pipeline(b *testing.B) {
	dir := b.TempDir()
	city := nycgen.NewCity(202, 10, 6)
	if _, err := city.ExportAll(dir, 303, 20000, 10000, 0.03); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := rdd.NewContext()
		if _, err := pipeline.CrimePipeline(ctx, dir, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Traffic advances the Figure 3 instance (200 cars, road
// 1000, p=0.13, vmax=5) by 500 steps.
func BenchmarkFig3Traffic(b *testing.B) {
	cfg := traffic.Config{Cars: 200, RoadLen: 1000, VMax: 5, P: 0.13, Seed: 2023}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := traffic.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s.RunSerial(500)
	}
}

// BenchmarkFig4Ensemble trains the Figure 4 ensemble (4 members, quick
// sizing) and runs the two-panel prediction.
func BenchmarkFig4Ensemble(b *testing.B) {
	ds := mnistgen.Generate(404, 900)
	train, val := ds.Split(720)
	cfgs := ensemble.Grid([][]int{{24}}, []float64{0.1, 0.05}, []float64{0.9, 0.5}, 4, 32, 505)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ens := ensemble.Train(train, val, cfgs, 0)
		r := prng.New(606)
		ens.Predict(mnistgen.Ambiguous(4, 9, r))
		ens.Predict(mnistgen.Render(4, r))
	}
}

// ---------- In-text claims ----------

// knnInstance returns a scaled version of the §2 instance (full size is
// n=q=5000, d=40; the default here is quarter scale so the full suite
// stays minutes, not hours — run cmd/peachy repro for the full instance).
func knnInstance() (*dataio.Dataset, [][]float64) {
	ds := dataio.GaussianMixture(111, 1250+1250, 40, 4, 4.0)
	db, q := ds.Split(1250)
	return db, q.Points
}

// BenchmarkC1KNNSequential compares the Θ(n log n) sort against the
// Θ(n log k) heap on the §2 instance.
func BenchmarkC1KNNSequential(b *testing.B) {
	db, queries := knnInstance()
	b.Run("Sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			knn.SequentialSort(db, queries, 15)
		}
	})
	b.Run("Heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			knn.SequentialHeap(db, queries, 15)
		}
	})
}

// BenchmarkC1KNNParallel sweeps worker counts for the shared-memory kNN.
func BenchmarkC1KNNParallel(b *testing.B) {
	db, queries := knnInstance()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("W%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				knn.Parallel(db, queries, 15, w)
			}
		})
	}
}

// BenchmarkC1KNNMapReduce sweeps rank counts for the MapReduce kNN.
func BenchmarkC1KNNMapReduce(b *testing.B) {
	db, queries := knnInstance()
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				world := cluster.NewWorld(p)
				if _, err := knn.MapReduce(world, db, queries, 15, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkC1KNNKDTree measures the space-partitioning variation.
func BenchmarkC1KNNKDTree(b *testing.B) {
	db, queries := knnInstance()
	tree := spatial.NewKDTree(db.Points, db.Labels)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		knn.KDTree(tree, queries, 15, 0)
	}
}

// BenchmarkC2CombinerEffect measures the §2 local-reduction claim: bytes
// shipped with and without combiners (reported as custom metrics).
func BenchmarkC2CombinerEffect(b *testing.B) {
	ds := dataio.GaussianMixture(222, 2000+50, 8, 4, 4.0)
	db, q := ds.Split(2000)
	for _, on := range []bool{false, true} {
		name := "CombinerOff"
		if on {
			name = "CombinerOn"
		}
		b.Run(name, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				world := cluster.NewWorld(4)
				if _, err := knn.MapReduce(world, db, q.Points, 15, on); err != nil {
					b.Fatal(err)
				}
				bytes = world.TotalBytes()
			}
			b.ReportMetric(float64(bytes), "shuffle-bytes")
		})
	}
}

// BenchmarkC3KMeansStrategies runs the §3 strategy ladder.
func BenchmarkC3KMeansStrategies(b *testing.B) {
	ds := dataio.GaussianMixture(333, 50000, 4, 16, 3.0)
	for _, s := range []kmeans.Strategy{kmeans.Sequential, kmeans.Critical, kmeans.Atomic, kmeans.Reduction} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kmeans.Run(ds.Points, kmeans.Options{K: 16, Seed: 5, Strategy: s, MaxIter: 5})
			}
		})
	}
}

// BenchmarkC4KMeansDistributed sweeps rank counts for the distributed
// K-means, reporting simulated communication time.
func BenchmarkC4KMeansDistributed(b *testing.B) {
	ds := dataio.GaussianMixture(444, 20000, 4, 8, 3.0)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				world := cluster.NewWorld(p)
				if _, err := kmeans.RunDistributed(world, ds.Points, kmeans.Options{K: 8, Seed: 5, MaxIter: 10}); err != nil {
					b.Fatal(err)
				}
				sim = world.SimTime()
			}
			b.ReportMetric(sim*1e6, "sim-us")
		})
	}
}

// BenchmarkC5TrafficScaling sweeps worker counts for the reproducible
// parallel traffic simulation.
func BenchmarkC5TrafficScaling(b *testing.B) {
	cfg := traffic.Config{Cars: 2000, RoadLen: 10000, VMax: 5, P: 0.13, Seed: 99}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("W%d", w), func(b *testing.B) {
			s, err := traffic.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.RunParallel(10, w, traffic.SharedSequence)
			}
		})
	}
}

// BenchmarkC6JumpAhead measures the O(log n) fast-forward against serial
// advancing for n = 2^20.
func BenchmarkC6JumpAhead(b *testing.B) {
	b.Run("Jump", func(b *testing.B) {
		g := prng.NewLCG64(1)
		for i := 0; i < b.N; i++ {
			g.Jump(1 << 20)
		}
	})
	b.Run("SerialAdvance", func(b *testing.B) {
		g := prng.NewLCG64(1)
		for i := 0; i < b.N; i++ {
			for j := 0; j < 1<<20; j++ {
				g.Uint64()
			}
		}
	})
}

// BenchmarkC7Heat compares part 1's forall solver (fresh tasks per step)
// against part 2's coforall solver (persistent tasks + barrier + halos).
func BenchmarkC7Heat(b *testing.B) {
	p := heat.Problem{Alpha: 0.25, U0: heat.SinInit(2048), Steps: 2000}
	sys := locale.NewSystem(4, 1)
	b.Run("Forall", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := heat.SolveForall(p, sys); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Coforall", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := heat.SolveCoforall(p, sys); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := heat.SolveSerial(p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkC8TaskFarm compares static and dynamic distribution of M=10
// tasks over P=4 ranks (P does not divide M), reporting load imbalance.
func BenchmarkC8TaskFarm(b *testing.B) {
	const m = 10
	run := func(b *testing.B, dynamic bool) {
		var imbalance float64
		for i := 0; i < b.N; i++ {
			world := cluster.NewWorld(4)
			err := world.Run(func(c *cluster.Comm) {
				exec := func(task int) int { return task * task }
				var rep taskfarm.Report
				if dynamic {
					_, rep = taskfarm.RunDynamic(c, m, exec)
				} else {
					_, rep = taskfarm.RunStatic(c, m, taskfarm.Block, exec)
				}
				if c.Rank() == 0 {
					imbalance = rep.Imbalance()
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(imbalance, "imbalance")
	}
	b.Run("Static", func(b *testing.B) { run(b, false) })
	b.Run("Dynamic", func(b *testing.B) { run(b, true) })
}

// BenchmarkC9EnsembleInference measures ensemble prediction with
// uncertainty over a batch of digits.
func BenchmarkC9EnsembleInference(b *testing.B) {
	ds := mnistgen.Generate(777, 600)
	train, val := ds.Split(500)
	cfgs := ensemble.Grid([][]int{{24}}, []float64{0.1}, []float64{0.9, 0.5}, 4, 32, 888)
	ens := ensemble.Train(train, val, cfgs, 0)
	probe := mnistgen.Generate(999, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range probe.Points {
			ens.Predict(x)
		}
	}
}

// TestMain keeps the bench package quiet under plain `go test ./...`.
func TestMain(m *testing.M) { os.Exit(m.Run()) }
